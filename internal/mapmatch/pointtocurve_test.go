package mapmatch

import (
	"testing"

	"repro/internal/traj"
)

func TestPointToCurveOnCleanTrace(t *testing.T) {
	city, rng := testWorld(301)
	truth, tr := simulateCase(t, city, rng, 4000, 20, 0)
	m := NewPointToCurve(city.Graph, DefaultParams())
	got, err := m.Match(tr)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if !got.Valid(city.Graph) {
		t.Fatal("invalid route")
	}
	if ov := routeOverlap(city.Graph, truth, got); ov < 0.85 {
		t.Errorf("overlap %.2f on a clean trace", ov)
	}
}

// TestPointToCurveWeakerThanST: the floor baseline should not beat the
// global matchers on noisy low-rate traces (averaged).
func TestPointToCurveWeakerThanST(t *testing.T) {
	city, rng := testWorld(303)
	var p2c, st float64
	runs := 6
	for i := 0; i < runs; i++ {
		truth, tr := simulateCase(t, city, rng, 5000, 240, 20)
		a, err1 := NewPointToCurve(city.Graph, DefaultParams()).Match(tr)
		b, err2 := NewSTMatcher(city.Graph, DefaultParams()).Match(tr)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v %v", err1, err2)
		}
		p2c += routeOverlap(city.Graph, truth, a)
		st += routeOverlap(city.Graph, truth, b)
	}
	if p2c > st*1.15 {
		t.Errorf("point-to-curve (%.2f) suspiciously above ST-matching (%.2f)",
			p2c/float64(runs), st/float64(runs))
	}
}

func TestPointToCurveDegenerate(t *testing.T) {
	city, _ := testWorld(305)
	m := NewPointToCurve(city.Graph, DefaultParams())
	if _, err := m.Match(&traj.Trajectory{}); err == nil {
		t.Fatal("empty trajectory accepted")
	}
}
