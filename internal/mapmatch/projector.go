package mapmatch

import (
	"context"

	"repro/internal/geo"
	"repro/internal/graphalg"
	"repro/internal/roadnet"
)

// Projector amortizes point-sequence projections that share a graph and
// params. HRIS's NNI converts dozens of transit-graph traces between the
// same query point pair, and those traces revisit the same reference
// points and the same consecutive location pairs over and over; the
// projector memoizes the two expensive primitives — the candidate search
// per point and the shortest-path bridge per location pair — so each is
// computed once per inference instead of once per trace. The memo is
// transparent: the graph is immutable and both primitives deterministic,
// so a projected route is identical to an uncached one.
//
// A Projector is not safe for concurrent use; create one per goroutine.
type Projector struct {
	g       *roadnet.Graph
	prm     Params
	cands   map[geo.Point][]roadnet.Candidate
	snaps   map[snapKey]snapVal
	bridges map[[2]roadnet.Location]bridge
}

type bridge struct {
	part roadnet.Route
	ok   bool
}

// snapKey identifies a snap: the point, the neighbour the heading comes
// from, and which side that neighbour is on.
type snapKey struct {
	p, o geo.Point
	m    snapMode
}

type snapVal struct {
	loc roadnet.Location
	ok  bool
}

// NewProjector returns a projector over g with the given matching params.
func NewProjector(g *roadnet.Graph, prm Params) *Projector {
	pj := &Projector{}
	pj.Reset(g, prm)
	return pj
}

// Reset returns the projector to its freshly-constructed state over g and
// prm: every memo emptied, with the map buckets kept allocated. A pooled
// projector Reset between inferences behaves identically to a new one —
// the memos are transparent, so only their (empty) starting state matters.
func (pj *Projector) Reset(g *roadnet.Graph, prm Params) {
	pj.g, pj.prm = g, prm
	if pj.cands == nil {
		pj.cands = make(map[geo.Point][]roadnet.Candidate)
		pj.snaps = make(map[snapKey]snapVal)
		pj.bridges = make(map[[2]roadnet.Location]bridge)
		return
	}
	clear(pj.cands)
	clear(pj.snaps)
	clear(pj.bridges)
}

func (pj *Projector) candidates(p geo.Point) []roadnet.Candidate {
	if c, ok := pj.cands[p]; ok {
		return c
	}
	c := candidatesFor(pj.g, p, pj.prm)
	pj.cands[p] = c
	return c
}

func (pj *Projector) snap(p, o geo.Point, m snapMode) (roadnet.Location, bool) {
	k := snapKey{p: p, o: o, m: m}
	if v, hit := pj.snaps[k]; hit {
		return v.loc, v.ok
	}
	loc, ok := snapPoint(pj.g, pj.prm, pj.candidates(p), p, o, m)
	pj.snaps[k] = snapVal{loc: loc, ok: ok}
	return loc, ok
}

// bridgeBetween is PathBetweenLocationsCtx through the memo. A failure
// observed while the context is cancelled is not cached — it means
// "aborted", not "unreachable", and must not outlive the cancellation.
func (pj *Projector) bridgeBetween(ctx context.Context, done <-chan struct{}, a, b roadnet.Location) (roadnet.Route, bool) {
	k := [2]roadnet.Location{a, b}
	if br, hit := pj.bridges[k]; hit {
		return br.part, br.ok
	}
	part, _, ok := pj.g.PathBetweenLocationsCtx(ctx, a, b)
	if !ok && graphalg.Stopped(done) {
		return nil, false
	}
	pj.bridges[k] = bridge{part: part, ok: ok}
	return part, ok
}

// Project converts a point sequence to a route exactly like
// ProjectPointSequenceCtx, serving candidate searches and bridges from
// the memo.
func (pj *Projector) Project(ctx context.Context, pts []geo.Point) (roadnet.Route, error) {
	return projectWith(ctx, pj.g, pts, pj.snap, pj.bridgeBetween)
}

// appendConcat is Route.Concat ∘ Dedup with dst's backing array reused:
// the stitch loop grows one route location by location, and the
// copy-on-concat of the value-semantics Concat is quadratic there. dst
// must be free of immediately repeated segments (the loop's invariant);
// ok=false leaves dst unchanged.
func appendConcat(g *roadnet.Graph, dst, s roadnet.Route) (roadnet.Route, bool) {
	if len(dst) == 0 {
		return appendDedup(dst, s), true
	}
	if len(s) == 0 {
		return dst, true
	}
	if g.Seg(s[0]).From == dst.End(g) || s[0] == dst[len(dst)-1] {
		return appendDedup(dst, s), true
	}
	br, _, ok := g.EdgePathBetweenVertices(dst.End(g), g.Seg(s[0]).From)
	if !ok {
		return dst, false
	}
	return appendDedup(appendDedup(dst, br), s), true
}

// appendDedup appends s to dst, dropping segments that repeat the one
// before them.
func appendDedup(dst, s roadnet.Route) roadnet.Route {
	for _, e := range s {
		if len(dst) == 0 || e != dst[len(dst)-1] {
			dst = append(dst, e)
		}
	}
	return dst
}
