// Package mapmatch implements the map-matching algorithms the paper uses:
// the incremental geometric matcher [Greenfeld 2002], ST-Matching
// [Lou et al. 2009] and IVMM [Yuan et al. 2010] as the experimental
// competitors (§IV-B), plus the point-sequence-to-route matcher that the
// preprocessing component and HRIS's NNI algorithm rely on.
package mapmatch

import (
	"context"
	"errors"
	"math"

	"repro/internal/geo"
	"repro/internal/graphalg"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// ErrNoRoute is returned when a matcher cannot produce any route for the
// trajectory (e.g. the points are unreachable from one another).
var ErrNoRoute = errors.New("mapmatch: no route found")

// Matcher maps a GPS trajectory onto a road-network route.
type Matcher interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Match returns the matched route for t.
	Match(t *traj.Trajectory) (roadnet.Route, error)
}

// CtxMatcher is implemented by matchers whose per-point dynamic programs
// carry cancellation checkpoints. All matchers in this package implement
// it; MatchCtx returns ctx.Err() when cancelled mid-match.
type CtxMatcher interface {
	Matcher
	MatchCtx(ctx context.Context, t *traj.Trajectory) (roadnet.Route, error)
}

// Params are the candidate-search settings shared by all matchers.
type Params struct {
	CandidateRadius float64 // initial search radius ε for candidate edges
	MaxCandidates   int     // candidates kept per point
	GPSSigma        float64 // observation (GPS error) standard deviation
}

// DefaultParams returns the settings used throughout the evaluation:
// ε = 50 m, 5 candidates per point, σ = 20 m.
func DefaultParams() Params {
	return Params{CandidateRadius: 50, MaxCandidates: 5, GPSSigma: 20}
}

// candidatesFor returns up to MaxCandidates candidates for p, widening the
// search radius when the initial ε finds nothing.
func candidatesFor(g *roadnet.Graph, p geo.Point, prm Params) []roadnet.Candidate {
	cands := g.CandidateEdges(p, prm.CandidateRadius)
	if len(cands) == 0 {
		cands = g.NearestCandidates(p, prm.MaxCandidates)
	}
	if len(cands) > prm.MaxCandidates {
		cands = cands[:prm.MaxCandidates]
	}
	return cands
}

// observation is the GPS error likelihood N(dist; 0, σ) up to a constant.
func observation(dist, sigma float64) float64 {
	return math.Exp(-dist * dist / (2 * sigma * sigma))
}

// StitchLocations connects a sequence of matched network locations into a
// single route with shortest-path bridges. Unreachable consecutive pairs
// are skipped (the later location is dropped), mirroring how practical
// matchers tolerate outliers. It fails only when no two locations connect.
func StitchLocations(g *roadnet.Graph, locs []roadnet.Location) (roadnet.Route, error) {
	return stitchLocations(context.Background(), g, locs)
}

// StitchLocationsCtx is StitchLocations with a cancellation checkpoint per
// location (each bridge is a shortest-path search). Returns ctx.Err() when
// cancelled.
func StitchLocationsCtx(ctx context.Context, g *roadnet.Graph, locs []roadnet.Location) (roadnet.Route, error) {
	return stitchLocations(ctx, g, locs)
}

func stitchLocations(ctx context.Context, g *roadnet.Graph, locs []roadnet.Location) (roadnet.Route, error) {
	return stitchWith(ctx, g, locs, plainBridge(g))
}

// bridgeFn produces the shortest-path bridge between two locations;
// implementations may memoize (see Projector).
type bridgeFn func(ctx context.Context, done <-chan struct{}, a, b roadnet.Location) (roadnet.Route, bool)

func plainBridge(g *roadnet.Graph) bridgeFn {
	return func(ctx context.Context, _ <-chan struct{}, a, b roadnet.Location) (roadnet.Route, bool) {
		part, _, ok := g.PathBetweenLocationsCtx(ctx, a, b)
		return part, ok
	}
}

func stitchWith(ctx context.Context, g *roadnet.Graph, locs []roadnet.Location, bridge bridgeFn) (roadnet.Route, error) {
	done := ctx.Done()
	var route roadnet.Route
	have := false
	cur := roadnet.Location{}
	for _, l := range locs {
		if graphalg.Stopped(done) {
			return nil, ctx.Err()
		}
		if !have {
			route = roadnet.Route{l.Edge}
			cur = l
			have = true
			continue
		}
		part, ok := bridge(ctx, done, cur, l)
		if !ok {
			continue
		}
		joined, ok := appendConcat(g, route, part)
		if !ok {
			continue
		}
		route = joined
		cur = l
	}
	if !have || len(route) == 0 {
		return nil, ErrNoRoute
	}
	return route, nil
}

// ProjectPointSequence converts a point sequence to a route cheaply: each
// point snaps to its nearest direction-compatible edge (using the travel
// heading implied by the sequence) and consecutive snaps are stitched with
// shortest paths. It trades ST-Matching's noise robustness for an
// order-of-magnitude lower cost — HRIS's NNI uses it to convert the many
// enumerated transit-graph traces into physical routes.
func ProjectPointSequence(g *roadnet.Graph, pts []geo.Point, prm Params) (roadnet.Route, error) {
	return projectPointSequence(context.Background(), g, pts, prm)
}

// ProjectPointSequenceCtx is ProjectPointSequence with a cancellation
// checkpoint per point; returns ctx.Err() when cancelled.
func ProjectPointSequenceCtx(ctx context.Context, g *roadnet.Graph, pts []geo.Point, prm Params) (roadnet.Route, error) {
	return projectPointSequence(ctx, g, pts, prm)
}

func projectPointSequence(ctx context.Context, g *roadnet.Graph, pts []geo.Point, prm Params) (roadnet.Route, error) {
	return projectWith(ctx, g, pts,
		func(p, o geo.Point, m snapMode) (roadnet.Location, bool) {
			return snapPoint(g, prm, candidatesFor(g, p, prm), p, o, m)
		},
		plainBridge(g))
}

// snapMode says which neighbour supplies the travel heading for a snap:
// the next point (the usual case), the previous one (last point of the
// sequence), or none (single-point sequence).
type snapMode uint8

const (
	snapLone snapMode = iota
	snapToNext
	snapFromPrev
)

// snapFn snaps point p to a network location, orienting by its neighbour
// o per mode m; ok=false when p has no candidate edges.
type snapFn func(p, o geo.Point, m snapMode) (roadnet.Location, bool)

// snapPoint picks the best direction-compatible candidate: heading
// agreement (cosine of the angle difference) minus a distance penalty.
func snapPoint(g *roadnet.Graph, prm Params, cands []roadnet.Candidate, p, o geo.Point, m snapMode) (roadnet.Location, bool) {
	if len(cands) == 0 {
		return roadnet.Location{}, false
	}
	best := cands[0]
	if m != snapLone {
		var heading float64
		if m == snapToNext {
			heading = p.Heading(o)
		} else {
			heading = o.Heading(p)
		}
		bestScore := math.Inf(-1)
		for _, c := range cands {
			seg := g.Seg(c.Edge)
			segHeading := seg.Shape[0].Heading(seg.Shape[len(seg.Shape)-1])
			score := math.Cos(geo.AngleDiff(heading, segHeading)) - c.Dist/(prm.GPSSigma*4)
			if score > bestScore {
				best, bestScore = c, score
			}
		}
	}
	return roadnet.Location{Edge: best.Edge, Offset: best.Offset}, true
}

func projectWith(ctx context.Context, g *roadnet.Graph, pts []geo.Point, snap snapFn, bridge bridgeFn) (roadnet.Route, error) {
	if len(pts) == 0 {
		return nil, ErrNoRoute
	}
	done := ctx.Done()
	locs := make([]roadnet.Location, 0, len(pts))
	for i, p := range pts {
		if graphalg.Stopped(done) {
			return nil, ctx.Err()
		}
		var loc roadnet.Location
		var ok bool
		switch {
		case i+1 < len(pts):
			loc, ok = snap(p, pts[i+1], snapToNext)
		case i > 0:
			loc, ok = snap(p, pts[i-1], snapFromPrev)
		default:
			loc, ok = snap(p, p, snapLone)
		}
		if !ok {
			continue
		}
		locs = append(locs, loc)
	}
	return stitchWith(ctx, g, locs, bridge)
}

// MatchPointSequence map-matches a (reasonably dense) sequence of points
// with the ST-Matching machinery and returns the route. HRIS's NNI uses it
// to turn a trace of reference points into a physical route ("we can derive
// a route from the points in trace by applying the map-matching
// techniques", §III-B.2); the preprocessing component uses it to align
// archive trajectories.
func MatchPointSequence(g *roadnet.Graph, pts []geo.Point, prm Params) (roadnet.Route, error) {
	return MatchPointSequenceCtx(context.Background(), g, pts, prm)
}

// MatchPointSequenceCtx is MatchPointSequence with cancellation
// checkpoints in the underlying ST-Matching dynamic program.
func MatchPointSequenceCtx(ctx context.Context, g *roadnet.Graph, pts []geo.Point, prm Params) (roadnet.Route, error) {
	t := &traj.Trajectory{ID: "seq"}
	for i, p := range pts {
		t.Points = append(t.Points, traj.GPSPoint{Pt: p, T: float64(i)})
	}
	m := NewSTMatcher(g, prm)
	m.SkipTemporal = true // synthetic timestamps carry no speed information
	return m.MatchCtx(ctx, t)
}
