package mapmatch

import (
	"context"
	"math"

	"repro/internal/graphalg"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// STMatcher implements ST-Matching [Lou et al. 2009]: a candidate graph is
// built over the per-point candidate edges; spatial analysis combines the
// GPS-error observation probability with a transmission probability
// (straight-line over network distance), temporal analysis compares the
// implied travel speed with the segment speed limits, and the best
// candidate sequence is found by dynamic programming.
type STMatcher struct {
	G      *roadnet.Graph
	Params Params
	// SkipTemporal disables the temporal term; used when timestamps are
	// synthetic (e.g. matching bare point sequences).
	SkipTemporal bool
}

// NewSTMatcher returns an ST-Matching matcher on g.
func NewSTMatcher(g *roadnet.Graph, prm Params) *STMatcher {
	return &STMatcher{G: g, Params: prm}
}

// Name implements Matcher.
func (m *STMatcher) Name() string { return "st-matching" }

// Match implements Matcher.
func (m *STMatcher) Match(t *traj.Trajectory) (roadnet.Route, error) {
	return m.match(context.Background(), t)
}

// MatchCtx implements CtxMatcher: Match with a cancellation checkpoint per
// trajectory point in the dynamic program (each point costs one batched
// oracle probe over its candidate pair). Returns ctx.Err() when cancelled.
func (m *STMatcher) MatchCtx(ctx context.Context, t *traj.Trajectory) (roadnet.Route, error) {
	return m.match(ctx, t)
}

func (m *STMatcher) match(ctx context.Context, t *traj.Trajectory) (roadnet.Route, error) {
	if t.Len() == 0 {
		return nil, ErrNoRoute
	}
	cands := make([][]roadnet.Candidate, t.Len())
	for i, p := range t.Points {
		cands[i] = candidatesFor(m.G, p.Pt, m.Params)
		if len(cands[i]) == 0 {
			return nil, ErrNoRoute
		}
	}
	if t.Len() == 1 {
		return roadnet.Route{cands[0][0].Edge}, nil
	}

	// One table session serves the whole DP: consecutive point pairs share
	// candidate vertices, so the CH oracle reuses their backward cones
	// instead of re-running one search per pair (answers are identical).
	ts := m.G.NewTableSession()
	defer ts.Close()

	// DP over the candidate graph: score[i][j] = best cumulative score of a
	// path ending at candidate j of point i.
	n := t.Len()
	score := make([][]float64, n)
	back := make([][]int, n)
	score[0] = make([]float64, len(cands[0]))
	back[0] = make([]int, len(cands[0]))
	for j, c := range cands[0] {
		score[0][j] = observation(c.Dist, m.Params.GPSSigma)
		back[0][j] = -1
	}
	done := ctx.Done()
	for i := 1; i < n; i++ {
		if graphalg.Stopped(done) {
			return nil, ctx.Err()
		}
		score[i] = make([]float64, len(cands[i]))
		back[i] = make([]int, len(cands[i]))
		straight := t.Points[i-1].Pt.Dist(t.Points[i].Pt)
		dt := t.Points[i].T - t.Points[i-1].T
		for j := range score[i] {
			score[i][j] = math.Inf(-1)
			back[i][j] = -1
		}
		f := m.transitionScores(ctx, ts, cands[i-1], cands[i], straight, dt)
		for pj := range cands[i-1] {
			for j := range cands[i] {
				if math.IsInf(f[pj][j], -1) {
					continue
				}
				if s := score[i-1][pj] + f[pj][j]; s > score[i][j] {
					score[i][j] = s
					back[i][j] = pj
				}
			}
		}
		// If every transition is unreachable, restart the chain at point i
		// (outlier tolerance).
		allDead := true
		for j := range score[i] {
			if !math.IsInf(score[i][j], -1) {
				allDead = false
				break
			}
		}
		if allDead {
			for j, c := range cands[i] {
				score[i][j] = observation(c.Dist, m.Params.GPSSigma)
				back[i][j] = -1
			}
		}
	}

	// Trace back the best sequence of candidate locations.
	bestJ := 0
	for j := range score[n-1] {
		if score[n-1][j] > score[n-1][bestJ] {
			bestJ = j
		}
	}
	locs := make([]roadnet.Location, 0, n)
	j := bestJ
	for i := n - 1; i >= 0; i-- {
		c := cands[i][j]
		locs = append(locs, roadnet.Location{Edge: c.Edge, Offset: c.Offset})
		if back[i][j] == -1 && i > 0 {
			// Chain restart: drop earlier points (they could not connect).
			break
		}
		j = back[i][j]
	}
	// Reverse into forward order.
	for a, b := 0, len(locs)-1; a < b; a, b = a+1, b-1 {
		locs[a], locs[b] = locs[b], locs[a]
	}
	return stitchLocations(ctx, m.G, locs)
}

// transitionScores returns the ST-Matching transition matrix f[pj][j]:
// the score for entering candidate j of the current point from candidate
// pj of the previous one. Network distances come from a single batched
// oracle probe per point pair (candidateDistTable) instead of one full
// Dijkstra per previous candidate; unreachable transitions are explicit
// -Inf entries, and neither the transmission term nor the temporal
// speed-constraint cosine (with its denominator) is computed for them.
// The observation term and the speed-limit lookups are hoisted out of the
// transition loop.
func (m *STMatcher) transitionScores(ctx context.Context, ts graphalg.TableSession, prev, cur []roadnet.Candidate, straight, dt float64) [][]float64 {
	f := candidateDistTable(ctx, m.G, ts, prev, cur)
	obs := make([]float64, len(cur))
	u2 := make([]float64, len(cur))
	for j, c := range cur {
		obs[j] = observation(c.Dist, m.Params.GPSSigma)
		u2[j] = m.G.Seg(c.Edge).Speed
	}
	for pj, pc := range prev {
		u1 := m.G.Seg(pc.Edge).Speed
		row := f[pj]
		for j := range cur {
			w := row[j]
			if math.IsInf(w, 1) {
				row[j] = math.Inf(-1)
				continue
			}
			s := obs[j] * transmission(straight, w)
			if !m.SkipTemporal && dt > 0 && w > 0 {
				s *= temporalCos(u1, u2[j], w/dt)
			}
			row[j] = s
		}
	}
	return f
}

// candidateDistTable returns the driving distance from every candidate of
// prev to every candidate of cur (+Inf when unreachable), resolving the
// vertex-to-vertex legs with one batched table query through ts.
func candidateDistTable(ctx context.Context, g *roadnet.Graph, ts graphalg.TableSession, prev, cur []roadnet.Candidate) [][]float64 {
	srcs := make([]roadnet.VertexID, len(prev))
	for pj, pc := range prev {
		srcs[pj] = g.Seg(pc.Edge).To
	}
	dsts := make([]roadnet.VertexID, len(cur))
	for j, c := range cur {
		dsts[j] = g.Seg(c.Edge).From
	}
	tbl := ts.TableCtx(ctx, srcs, dsts)
	for pj, pc := range prev {
		sa := g.Seg(pc.Edge)
		row := tbl[pj]
		for j, c := range cur {
			if pc.Edge == c.Edge && c.Offset >= pc.Offset {
				row[j] = c.Offset - pc.Offset
				continue
			}
			if math.IsInf(row[j], 1) {
				continue
			}
			row[j] = (sa.Length - pc.Offset) + row[j] + c.Offset
		}
	}
	return tbl
}

// transmission is the ST-Matching transmission probability: straight-line
// distance over network distance, capped at 1.
func transmission(straight, network float64) float64 {
	if network <= 0 {
		return 1
	}
	v := straight / network
	if v > 1 {
		v = 1
	}
	return v
}

// temporalCos is the ST-Matching temporal analysis term: the cosine
// similarity between the speed-limit vector along the transition (sampled
// at the two endpoint segments, u1 and u2 — the paper uses every segment
// on the sub-path, which the two ends dominate for the short transitions
// map-matching sees) and the constant actual travel speed. Transitions
// whose implied speed matches the road class score higher.
func temporalCos(u1, u2, actualSpeed float64) float64 {
	num := u1*actualSpeed + u2*actualSpeed
	den := math.Sqrt(u1*u1+u2*u2) * math.Sqrt(2*actualSpeed*actualSpeed)
	if den == 0 {
		return 1
	}
	return num / den
}
