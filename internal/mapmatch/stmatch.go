package mapmatch

import (
	"context"
	"math"

	"repro/internal/graphalg"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// STMatcher implements ST-Matching [Lou et al. 2009]: a candidate graph is
// built over the per-point candidate edges; spatial analysis combines the
// GPS-error observation probability with a transmission probability
// (straight-line over network distance), temporal analysis compares the
// implied travel speed with the segment speed limits, and the best
// candidate sequence is found by dynamic programming.
type STMatcher struct {
	G      *roadnet.Graph
	Params Params
	// SkipTemporal disables the temporal term; used when timestamps are
	// synthetic (e.g. matching bare point sequences).
	SkipTemporal bool
}

// NewSTMatcher returns an ST-Matching matcher on g.
func NewSTMatcher(g *roadnet.Graph, prm Params) *STMatcher {
	return &STMatcher{G: g, Params: prm}
}

// Name implements Matcher.
func (m *STMatcher) Name() string { return "st-matching" }

// Match implements Matcher.
func (m *STMatcher) Match(t *traj.Trajectory) (roadnet.Route, error) {
	return m.match(context.Background(), t)
}

// MatchCtx implements CtxMatcher: Match with a cancellation checkpoint per
// trajectory point in the dynamic program (each point costs one Dijkstra
// per previous candidate). Returns ctx.Err() when cancelled.
func (m *STMatcher) MatchCtx(ctx context.Context, t *traj.Trajectory) (roadnet.Route, error) {
	return m.match(ctx, t)
}

func (m *STMatcher) match(ctx context.Context, t *traj.Trajectory) (roadnet.Route, error) {
	if t.Len() == 0 {
		return nil, ErrNoRoute
	}
	cands := make([][]roadnet.Candidate, t.Len())
	for i, p := range t.Points {
		cands[i] = candidatesFor(m.G, p.Pt, m.Params)
		if len(cands[i]) == 0 {
			return nil, ErrNoRoute
		}
	}
	if t.Len() == 1 {
		return roadnet.Route{cands[0][0].Edge}, nil
	}

	// DP over the candidate graph: score[i][j] = best cumulative score of a
	// path ending at candidate j of point i.
	n := t.Len()
	score := make([][]float64, n)
	back := make([][]int, n)
	score[0] = make([]float64, len(cands[0]))
	back[0] = make([]int, len(cands[0]))
	for j, c := range cands[0] {
		score[0][j] = observation(c.Dist, m.Params.GPSSigma)
		back[0][j] = -1
	}
	done := ctx.Done()
	for i := 1; i < n; i++ {
		if graphalg.Stopped(done) {
			return nil, ctx.Err()
		}
		score[i] = make([]float64, len(cands[i]))
		back[i] = make([]int, len(cands[i]))
		straight := t.Points[i-1].Pt.Dist(t.Points[i].Pt)
		dt := t.Points[i].T - t.Points[i-1].T
		// One Dijkstra per previous candidate: distances from its end
		// vertex serve all current candidates.
		for j := range score[i] {
			score[i][j] = math.Inf(-1)
			back[i][j] = -1
		}
		for pj, pc := range cands[i-1] {
			pseg := m.G.Seg(pc.Edge)
			dists := m.G.VertexDistancesCtx(ctx, pseg.To)
			for j, c := range cands[i] {
				w := m.networkDist(pc, c, dists)
				if math.IsInf(w, 1) {
					continue
				}
				trans := transmission(straight, w)
				f := observation(c.Dist, m.Params.GPSSigma) * trans
				if !m.SkipTemporal && dt > 0 && w > 0 {
					f *= m.temporal(pc, c, w/dt)
				}
				if s := score[i-1][pj] + f; s > score[i][j] {
					score[i][j] = s
					back[i][j] = pj
				}
			}
		}
		// If every transition is unreachable, restart the chain at point i
		// (outlier tolerance).
		allDead := true
		for j := range score[i] {
			if !math.IsInf(score[i][j], -1) {
				allDead = false
				break
			}
		}
		if allDead {
			for j, c := range cands[i] {
				score[i][j] = observation(c.Dist, m.Params.GPSSigma)
				back[i][j] = -1
			}
		}
	}

	// Trace back the best sequence of candidate locations.
	bestJ := 0
	for j := range score[n-1] {
		if score[n-1][j] > score[n-1][bestJ] {
			bestJ = j
		}
	}
	locs := make([]roadnet.Location, 0, n)
	j := bestJ
	for i := n - 1; i >= 0; i-- {
		c := cands[i][j]
		locs = append(locs, roadnet.Location{Edge: c.Edge, Offset: c.Offset})
		if back[i][j] == -1 && i > 0 {
			// Chain restart: drop earlier points (they could not connect).
			break
		}
		j = back[i][j]
	}
	// Reverse into forward order.
	for a, b := 0, len(locs)-1; a < b; a, b = a+1, b-1 {
		locs[a], locs[b] = locs[b], locs[a]
	}
	return stitchLocations(ctx, m.G, locs)
}

// networkDist computes the driving distance from candidate a to candidate b
// given precomputed vertex distances from a's segment end.
func (m *STMatcher) networkDist(a, b roadnet.Candidate, distsFromAEnd []float64) float64 {
	if a.Edge == b.Edge && b.Offset >= a.Offset {
		return b.Offset - a.Offset
	}
	sa, sb := m.G.Seg(a.Edge), m.G.Seg(b.Edge)
	mid := distsFromAEnd[sb.From]
	if math.IsInf(mid, 1) {
		return mid
	}
	return (sa.Length - a.Offset) + mid + b.Offset
}

// transmission is the ST-Matching transmission probability: straight-line
// distance over network distance, capped at 1.
func transmission(straight, network float64) float64 {
	if network <= 0 {
		return 1
	}
	v := straight / network
	if v > 1 {
		v = 1
	}
	return v
}

// temporal is the ST-Matching temporal analysis term: the cosine similarity
// between the speed-limit vector along the transition and the (constant)
// actual travel speed. Transitions whose implied speed matches the road
// class score higher.
func (m *STMatcher) temporal(a, b roadnet.Candidate, actualSpeed float64) float64 {
	// Use the two endpoint segments as the speed-limit sample; the paper
	// uses every segment on the sub-path, which the two ends dominate for
	// the short transitions map-matching sees.
	u1 := m.G.Seg(a.Edge).Speed
	u2 := m.G.Seg(b.Edge).Speed
	num := u1*actualSpeed + u2*actualSpeed
	den := math.Sqrt(u1*u1+u2*u2) * math.Sqrt(2*actualSpeed*actualSpeed)
	if den == 0 {
		return 1
	}
	return num / den
}
