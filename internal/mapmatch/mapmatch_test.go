package mapmatch

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/traj"
)

func testWorld(seed int64) (*sim.City, *rand.Rand) {
	cfg := sim.DefaultCityConfig()
	cfg.Rows, cfg.Cols = 12, 12
	cfg.Hotspots = 6
	return sim.GenerateCity(cfg, seed), rand.New(rand.NewSource(seed))
}

// routeOverlap returns the fraction of the truth route's length covered by
// segments that also appear in the matched route (a cheap accuracy proxy
// for matcher tests; the real A_L metric lives in internal/eval).
func routeOverlap(g *roadnet.Graph, truth, matched roadnet.Route) float64 {
	in := make(map[roadnet.EdgeID]bool, len(matched))
	for _, e := range matched {
		in[e] = true
	}
	var common, total float64
	for _, e := range truth {
		l := g.Seg(e).Length
		total += l
		if in[e] {
			common += l
		}
	}
	if total == 0 {
		return 0
	}
	return common / total
}

func simulateCase(t *testing.T, city *sim.City, rng *rand.Rand, length, interval, noise float64) (roadnet.Route, *traj.Trajectory) {
	t.Helper()
	route, ok := city.TripOfLength(length, 4, 1.6, rng)
	if !ok {
		t.Fatal("TripOfLength failed")
	}
	motion := sim.DefaultMotion()
	motion.Interval = interval
	tr := sim.SimulateTrip(city.Graph, route, "q", 0, motion, rng)
	if noise > 0 {
		tr = traj.AddNoise(tr, noise, rng)
	}
	return route, tr
}

func matchers(g *roadnet.Graph) []Matcher {
	prm := DefaultParams()
	return []Matcher{NewIncremental(g, prm), NewSTMatcher(g, prm), NewIVMM(g, prm)}
}

// TestMatchersOnCleanHighRate: with dense, noise-free samples every matcher
// should recover nearly the whole route.
func TestMatchersOnCleanHighRate(t *testing.T) {
	city, rng := testWorld(101)
	truth, tr := simulateCase(t, city, rng, 4000, 20, 0)
	for _, m := range matchers(city.Graph) {
		got, err := m.Match(tr)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !got.Valid(city.Graph) {
			t.Fatalf("%s: invalid route", m.Name())
		}
		if ov := routeOverlap(city.Graph, truth, got); ov < 0.9 {
			t.Errorf("%s: overlap %.2f on clean high-rate trace", m.Name(), ov)
		}
	}
}

// TestMatchersOnNoisyHighRate: moderate GPS noise should still be handled
// well at high sampling rates.
func TestMatchersOnNoisyHighRate(t *testing.T) {
	city, rng := testWorld(103)
	truth, tr := simulateCase(t, city, rng, 4000, 20, 15)
	for _, m := range matchers(city.Graph) {
		got, err := m.Match(tr)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if ov := routeOverlap(city.Graph, truth, got); ov < 0.75 {
			t.Errorf("%s: overlap %.2f on noisy high-rate trace", m.Name(), ov)
		}
	}
}

// TestSTBeatsIncrementalOnLowRate reproduces the qualitative ordering the
// paper relies on: matchers designed for low sampling rates outperform the
// greedy incremental one when the interval grows (averaged over queries).
func TestSTBeatsIncrementalOnLowRate(t *testing.T) {
	city, rng := testWorld(105)
	var stSum, incSum float64
	runs := 6
	for i := 0; i < runs; i++ {
		truth, tr := simulateCase(t, city, rng, 6000, 240, 15)
		st, err1 := NewSTMatcher(city.Graph, DefaultParams()).Match(tr)
		inc, err2 := NewIncremental(city.Graph, DefaultParams()).Match(tr)
		if err1 != nil || err2 != nil {
			t.Fatalf("match errors: %v %v", err1, err2)
		}
		stSum += routeOverlap(city.Graph, truth, st)
		incSum += routeOverlap(city.Graph, truth, inc)
	}
	if stSum < incSum {
		t.Errorf("ST %.2f worse than incremental %.2f over %d runs", stSum/float64(runs), incSum/float64(runs), runs)
	}
}

func TestMatchersDegenerateInputs(t *testing.T) {
	city, _ := testWorld(107)
	for _, m := range matchers(city.Graph) {
		if _, err := m.Match(&traj.Trajectory{}); err == nil {
			t.Errorf("%s: empty trajectory accepted", m.Name())
		}
		one := &traj.Trajectory{Points: []traj.GPSPoint{{Pt: geo.Pt(1000, 1000), T: 0}}}
		r, err := m.Match(one)
		if err != nil || len(r) != 1 {
			t.Errorf("%s: single point -> %v, %v", m.Name(), r, err)
		}
	}
}

func TestStitchLocations(t *testing.T) {
	g := roadnet.NewGrid(3, 3, 100, 15)
	a, _ := g.LocationOf(geo.Pt(50, 0))
	b, _ := g.LocationOf(geo.Pt(150, 200))
	route, err := StitchLocations(g, []roadnet.Location{a, b})
	if err != nil {
		t.Fatalf("StitchLocations: %v", err)
	}
	if !route.Valid(g) {
		t.Fatalf("stitched route invalid: %v", route)
	}
	if _, err := StitchLocations(g, nil); err == nil {
		t.Fatal("empty locations accepted")
	}
}

func TestMatchPointSequence(t *testing.T) {
	city, rng := testWorld(109)
	truth, tr := simulateCase(t, city, rng, 3000, 20, 0)
	pts := make([]geo.Point, tr.Len())
	for i, p := range tr.Points {
		pts[i] = p.Pt
	}
	route, err := MatchPointSequence(city.Graph, pts, DefaultParams())
	if err != nil {
		t.Fatalf("MatchPointSequence: %v", err)
	}
	if ov := routeOverlap(city.Graph, truth, route); ov < 0.9 {
		t.Errorf("point-sequence overlap %.2f", ov)
	}
}

func TestObservationMonotone(t *testing.T) {
	if observation(0, 20) != 1 {
		t.Fatal("observation(0) != 1")
	}
	if observation(10, 20) <= observation(50, 20) {
		t.Fatal("observation not decreasing")
	}
}

func TestTransmissionBounds(t *testing.T) {
	if transmission(100, 100) != 1 || transmission(100, 200) != 0.5 {
		t.Fatal("transmission wrong")
	}
	if transmission(200, 100) != 1 {
		t.Fatal("transmission should cap at 1")
	}
	if transmission(50, 0) != 1 {
		t.Fatal("zero network distance should give 1")
	}
}
