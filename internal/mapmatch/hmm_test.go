package mapmatch

import (
	"testing"

	"repro/internal/traj"
)

func TestHMMOnCleanHighRate(t *testing.T) {
	city, rng := testWorld(201)
	truth, tr := simulateCase(t, city, rng, 4000, 20, 0)
	m := NewHMM(city.Graph, DefaultParams())
	got, err := m.Match(tr)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if !got.Valid(city.Graph) {
		t.Fatal("invalid route")
	}
	if ov := routeOverlap(city.Graph, truth, got); ov < 0.9 {
		t.Errorf("overlap %.2f on clean high-rate trace", ov)
	}
}

func TestHMMOnNoisyTrace(t *testing.T) {
	city, rng := testWorld(203)
	truth, tr := simulateCase(t, city, rng, 4000, 20, 15)
	got, err := NewHMM(city.Graph, DefaultParams()).Match(tr)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if ov := routeOverlap(city.Graph, truth, got); ov < 0.75 {
		t.Errorf("overlap %.2f on noisy trace", ov)
	}
}

func TestHMMDegenerate(t *testing.T) {
	city, _ := testWorld(205)
	m := NewHMM(city.Graph, DefaultParams())
	if _, err := m.Match(&traj.Trajectory{}); err == nil {
		t.Fatal("empty trajectory accepted")
	}
	one := &traj.Trajectory{Points: []traj.GPSPoint{{T: 1}}}
	r, err := m.Match(one)
	if err != nil || len(r) != 1 {
		t.Fatalf("single point: %v, %v", r, err)
	}
}

// TestHMMComparableToST: on moderate sampling rates the HMM and ST-Matching
// should produce similar-quality routes (both are global DP matchers).
func TestHMMComparableToST(t *testing.T) {
	city, rng := testWorld(207)
	var hmmSum, stSum float64
	runs := 5
	for i := 0; i < runs; i++ {
		truth, tr := simulateCase(t, city, rng, 5000, 120, 15)
		h, err1 := NewHMM(city.Graph, DefaultParams()).Match(tr)
		s, err2 := NewSTMatcher(city.Graph, DefaultParams()).Match(tr)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v %v", err1, err2)
		}
		hmmSum += routeOverlap(city.Graph, truth, h)
		stSum += routeOverlap(city.Graph, truth, s)
	}
	if hmmSum < stSum*0.7 {
		t.Errorf("HMM (%.2f) far below ST (%.2f)", hmmSum/float64(runs), stSum/float64(runs))
	}
}
