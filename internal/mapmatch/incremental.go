package mapmatch

import (
	"context"
	"math"

	"repro/internal/geo"
	"repro/internal/graphalg"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Incremental implements the classic incremental matcher [Greenfeld 2002]:
// each point is matched greedily using its geometric fit (projection
// distance and heading similarity) plus the topological continuity with
// the edge matched to the previous point. It has no look-ahead, which is
// exactly why it degrades on low-sampling-rate trajectories (§IV-C).
type Incremental struct {
	G      *roadnet.Graph
	Params Params
	// HopLimit bounds the connectivity search from the previous edge.
	HopLimit int
}

// NewIncremental returns an incremental matcher on g.
func NewIncremental(g *roadnet.Graph, prm Params) *Incremental {
	return &Incremental{G: g, Params: prm, HopLimit: 6}
}

// Name implements Matcher.
func (m *Incremental) Name() string { return "incremental" }

// Match implements Matcher.
func (m *Incremental) Match(t *traj.Trajectory) (roadnet.Route, error) {
	return m.match(context.Background(), t)
}

// MatchCtx implements CtxMatcher: Match with a cancellation checkpoint per
// trajectory point (each point runs a hop-limited BFS from the previous
// edge). Returns ctx.Err() when cancelled.
func (m *Incremental) MatchCtx(ctx context.Context, t *traj.Trajectory) (roadnet.Route, error) {
	return m.match(ctx, t)
}

func (m *Incremental) match(ctx context.Context, t *traj.Trajectory) (roadnet.Route, error) {
	if t.Len() == 0 {
		return nil, ErrNoRoute
	}
	done := ctx.Done()
	locs := make([]roadnet.Location, 0, t.Len())
	prevEdge := roadnet.NoEdge
	for i, p := range t.Points {
		if graphalg.Stopped(done) {
			return nil, ctx.Err()
		}
		cands := candidatesFor(m.G, p.Pt, m.Params)
		if len(cands) == 0 {
			continue
		}
		var heading float64
		hasHeading := false
		if i+1 < t.Len() {
			heading = p.Pt.Heading(t.Points[i+1].Pt)
			hasHeading = true
		} else if i > 0 {
			heading = t.Points[i-1].Pt.Heading(p.Pt)
			hasHeading = true
		}
		var hops []int
		if prevEdge != roadnet.NoEdge {
			hops = m.G.EdgeHopsCtx(ctx, prevEdge, m.HopLimit)
		}
		best, bestScore := cands[0], math.Inf(-1)
		for _, c := range cands {
			s := m.score(c, heading, hasHeading, hops)
			if s > bestScore {
				best, bestScore = c, s
			}
		}
		locs = append(locs, roadnet.Location{Edge: best.Edge, Offset: best.Offset})
		prevEdge = best.Edge
	}
	return stitchLocations(ctx, m.G, locs)
}

// score combines projection distance, heading agreement and topological
// continuity, following Greenfeld's weighted similarity measure.
func (m *Incremental) score(c roadnet.Candidate, heading float64, hasHeading bool, hopsFromPrev []int) float64 {
	s := observation(c.Dist, m.Params.GPSSigma)
	if hasHeading {
		seg := m.G.Seg(c.Edge)
		segHeading := seg.Shape[0].Heading(seg.Shape[len(seg.Shape)-1])
		diff := geo.AngleDiff(heading, segHeading)
		s += 0.5 * math.Cos(diff) // in [-0.5, 0.5]
	}
	if hopsFromPrev != nil {
		if h := hopsFromPrev[c.Edge]; h >= 0 {
			s += 0.6 / float64(h+1) // reachable: closer is better
		} else {
			s -= 0.6 // unreachable from the previous edge
		}
	}
	return s
}
