package mapmatch

import (
	"context"
	"math"

	"repro/internal/graphalg"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// HMM implements the Newson–Krumm hidden-Markov-model matcher ("Hidden
// Markov map matching through noise and sparseness", ACM GIS 2009) as an
// extension baseline beyond the paper's three competitors. Emission
// probabilities are Gaussian in the projection distance; transition
// probabilities are exponential in the absolute difference between the
// straight-line and network distances of consecutive points; the Viterbi
// path maximizes the joint log-likelihood.
type HMM struct {
	G      *roadnet.Graph
	Params Params
	// Beta is the exponential scale of the transition model; Newson and
	// Krumm estimate it from data as the median |route − great-circle|
	// difference. Their published value for 30 s data is ~2 m; sparser
	// trajectories need a larger scale.
	Beta float64
}

// NewHMM returns a Newson–Krumm matcher on g.
func NewHMM(g *roadnet.Graph, prm Params) *HMM {
	return &HMM{G: g, Params: prm, Beta: 50}
}

// Name implements Matcher.
func (m *HMM) Name() string { return "hmm" }

// Match implements Matcher.
func (m *HMM) Match(t *traj.Trajectory) (roadnet.Route, error) {
	return m.match(context.Background(), t)
}

// MatchCtx implements CtxMatcher: Match with a cancellation checkpoint per
// trajectory point in the Viterbi pass. Returns ctx.Err() when cancelled.
func (m *HMM) MatchCtx(ctx context.Context, t *traj.Trajectory) (roadnet.Route, error) {
	return m.match(ctx, t)
}

func (m *HMM) match(ctx context.Context, t *traj.Trajectory) (roadnet.Route, error) {
	n := t.Len()
	if n == 0 {
		return nil, ErrNoRoute
	}
	cands := make([][]roadnet.Candidate, n)
	for i, p := range t.Points {
		cands[i] = candidatesFor(m.G, p.Pt, m.Params)
		if len(cands[i]) == 0 {
			return nil, ErrNoRoute
		}
	}
	if n == 1 {
		return roadnet.Route{cands[0][0].Edge}, nil
	}

	logEmission := func(c roadnet.Candidate) float64 {
		return -c.Dist * c.Dist / (2 * m.Params.GPSSigma * m.Params.GPSSigma)
	}
	score := make([][]float64, n)
	back := make([][]int, n)
	score[0] = make([]float64, len(cands[0]))
	back[0] = make([]int, len(cands[0]))
	for j, c := range cands[0] {
		score[0][j] = logEmission(c)
		back[0][j] = -1
	}
	ts := m.G.NewTableSession()
	defer ts.Close()
	done := ctx.Done()
	for i := 1; i < n; i++ {
		if graphalg.Stopped(done) {
			return nil, ctx.Err()
		}
		straight := t.Points[i-1].Pt.Dist(t.Points[i].Pt)
		score[i] = make([]float64, len(cands[i]))
		back[i] = make([]int, len(cands[i]))
		for j := range score[i] {
			score[i][j] = math.Inf(-1)
			back[i][j] = -1
		}
		wtbl := candidateDistTable(ctx, m.G, ts, cands[i-1], cands[i])
		for pj := range cands[i-1] {
			if math.IsInf(score[i-1][pj], -1) {
				continue
			}
			for j, c := range cands[i] {
				w := wtbl[pj][j]
				if math.IsInf(w, 1) {
					continue
				}
				// Newson–Krumm transition: exp(-|d_route − d_line|/β).
				logTrans := -math.Abs(w-straight) / m.Beta
				if s := score[i-1][pj] + logTrans + logEmission(c); s > score[i][j] {
					score[i][j] = s
					back[i][j] = pj
				}
			}
		}
		// HMM break (their "broken" handling): restart on a dead layer.
		allDead := true
		for j := range score[i] {
			if !math.IsInf(score[i][j], -1) {
				allDead = false
				break
			}
		}
		if allDead {
			for j, c := range cands[i] {
				score[i][j] = logEmission(c)
				back[i][j] = -1
			}
		}
	}
	bestJ := 0
	for j := range score[n-1] {
		if score[n-1][j] > score[n-1][bestJ] {
			bestJ = j
		}
	}
	locs := make([]roadnet.Location, 0, n)
	j := bestJ
	for i := n - 1; i >= 0; i-- {
		c := cands[i][j]
		locs = append(locs, roadnet.Location{Edge: c.Edge, Offset: c.Offset})
		if back[i][j] == -1 && i > 0 {
			break
		}
		j = back[i][j]
	}
	for a, b := 0, len(locs)-1; a < b; a, b = a+1, b-1 {
		locs[a], locs[b] = locs[b], locs[a]
	}
	return stitchLocations(ctx, m.G, locs)
}
