package mapmatch

import (
	"context"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// disconnectedNet builds a network with two components that no arc
// connects: v0—v1 around x∈[0,100] and v2—v3 around x∈[400,500].
func disconnectedNet() *roadnet.Graph {
	b := roadnet.NewBuilder()
	v0 := b.AddVertex(geo.Pt(0, 0))
	v1 := b.AddVertex(geo.Pt(100, 0))
	v2 := b.AddVertex(geo.Pt(400, 0))
	v3 := b.AddVertex(geo.Pt(500, 0))
	b.AddBidirectional(v0, v1, 15, nil)
	b.AddBidirectional(v2, v3, 15, nil)
	return b.Build()
}

// TestTransitionScoresDisconnected: a candidate pair with no connecting
// path must yield an explicit -Inf transition score — never NaN (the old
// code risked 0·Inf in the temporal term's denominator) and never a
// finite value.
func TestTransitionScoresDisconnected(t *testing.T) {
	g := disconnectedNet()
	m := NewSTMatcher(g, DefaultParams())
	prev := candidatesFor(g, geo.Pt(50, 5), m.Params)
	cur := candidatesFor(g, geo.Pt(450, 5), m.Params)
	if len(prev) == 0 || len(cur) == 0 {
		t.Fatalf("no candidates: prev=%d cur=%d", len(prev), len(cur))
	}
	ts := g.NewTableSession()
	defer ts.Close()
	f := m.transitionScores(context.Background(), ts, prev, cur, 400, 60)
	for pj := range f {
		for j, s := range f[pj] {
			if math.IsNaN(s) {
				t.Fatalf("f[%d][%d] is NaN", pj, j)
			}
			if !math.IsInf(s, -1) {
				t.Errorf("f[%d][%d] = %v, want -Inf for cross-component transition", pj, j, s)
			}
		}
	}

	// Sanity check of the reachable direction within one component.
	cur1 := candidatesFor(g, geo.Pt(80, 5), m.Params)
	f = m.transitionScores(context.Background(), ts, prev, cur1, 30, 10)
	finite := false
	for pj := range f {
		for _, s := range f[pj] {
			if !math.IsInf(s, -1) && !math.IsNaN(s) {
				finite = true
			}
		}
	}
	if !finite {
		t.Fatal("no finite transition inside a connected component")
	}
}

// TestSTMatchDisconnectedCandidate: when consecutive points fall in
// different components, the DP layer goes fully dead and the matcher must
// restart the chain there instead of failing or producing NaN scores.
func TestSTMatchDisconnectedCandidate(t *testing.T) {
	g := disconnectedNet()
	tr := &traj.Trajectory{ID: "disc", Points: []traj.GPSPoint{
		{Pt: geo.Pt(30, 5), T: 0},
		{Pt: geo.Pt(80, 5), T: 30},
		{Pt: geo.Pt(430, 5), T: 60},
		{Pt: geo.Pt(480, 5), T: 90},
	}}
	for _, m := range []Matcher{
		NewSTMatcher(g, DefaultParams()),
		NewIVMM(g, DefaultParams()),
		NewHMM(g, DefaultParams()),
	} {
		route, err := m.Match(tr)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !route.Valid(g) {
			t.Fatalf("%s: invalid route %v", m.Name(), route)
		}
	}
}
