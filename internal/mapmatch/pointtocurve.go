package mapmatch

import (
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// PointToCurve is the naive geometric matcher every map-matching survey
// starts from (and the strawman Greenfeld improves upon): each point snaps
// independently to its nearest road segment, and the snapped locations are
// stitched with shortest paths. It ignores both topology between
// consecutive points and headings, so GPS noise near intersections makes
// it jump between parallel roads — included as the floor baseline.
type PointToCurve struct {
	G      *roadnet.Graph
	Params Params
}

// NewPointToCurve returns a point-to-curve matcher on g.
func NewPointToCurve(g *roadnet.Graph, prm Params) *PointToCurve {
	return &PointToCurve{G: g, Params: prm}
}

// Name implements Matcher.
func (m *PointToCurve) Name() string { return "point-to-curve" }

// Match implements Matcher.
func (m *PointToCurve) Match(t *traj.Trajectory) (roadnet.Route, error) {
	if t.Len() == 0 {
		return nil, ErrNoRoute
	}
	locs := make([]roadnet.Location, 0, t.Len())
	for _, p := range t.Points {
		cands := candidatesFor(m.G, p.Pt, m.Params)
		if len(cands) == 0 {
			continue
		}
		locs = append(locs, roadnet.Location{Edge: cands[0].Edge, Offset: cands[0].Offset})
	}
	return StitchLocations(m.G, locs)
}
