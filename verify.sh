#!/bin/sh
# Repo verification: formatting, vet, build, full tests, and the race
# detector over every package. ROADMAP.md's tier-1 line is the vet/build/test
# steps; the repo-wide -race pass guards the Engine's concurrency contract
# and the lock-free obs instruments.
#
# -timeout caps each package's test binary: with cancellation checkpoints
# threaded through every search loop, a hang now means a broken checkpoint,
# and the cap turns it into a fast failure instead of a stuck CI job.
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test -timeout 120s ./...
go test -timeout 300s -race ./...

# Order independence: tests must not rely on each other's side effects or on
# package-level iteration order — shuffle execution order (also defeats the
# test cache, so everything actually reruns).
go test -timeout 120s -shuffle=on ./...

# Sharded-archive smoke: the scatter-gather equivalence, boundary-dedup and
# concurrent ingest/inference suites under the race detector, twice in one
# binary (-count=2 defeats caching and catches epoch/fingerprint state that
# leaks between runs).
go test -timeout 300s -race -count=2 -run Sharded ./internal/hist/ ./internal/core/

# Determinism: the Yen equal-weight tie-break and the K-GRI oracle suites
# must give identical verdicts run-to-run (-count=2 defeats test caching and
# runs each twice in one binary).
go test -timeout 120s -count=2 -run 'Yen|KGRI' ./internal/graphalg/ ./internal/core/

# Bench smoke: the acceleration-layer benchmarks (end-to-end HRIS query,
# ST-Matching, CH build — each in both oracle modes where applicable) plus
# the live-archive ingest benchmarks (Ingest matches both the in-memory
# BenchmarkIngest and the WAL-on BenchmarkIngestDurable) must run one
# iteration without failing. Real numbers come from
# `go test -bench -benchmem` and cmd/experiments -fig bench-json.
go test -timeout 300s -run '^$' -bench 'HRISQuery|STMatch|CH|Ingest|SessionStep' -benchtime 1x .

# Alloc-regression gate: the steady-state query hot path must stay within
# the checked-in budget (bench_budget.json). BenchmarkHRISQuery warms the
# pools and memos before the timer starts, so allocs/op here is the
# steady-state number — stable to ±1 across runs. The benchmark line format
# is "BenchmarkHRISQuery <N> <ns/op> ns/op <B/op> B/op <allocs/op> allocs/op";
# allocs/op is field NF-1 and B/op is field NF-3.
bench_line=$(go test -timeout 300s -run '^$' -bench '^BenchmarkHRISQuery$' \
    -benchmem -benchtime 20x . | grep '^BenchmarkHRISQuery')
echo "$bench_line"
allocs=$(echo "$bench_line" | awk '{print $(NF-1)}')
bytes=$(echo "$bench_line" | awk '{print $(NF-3)}')
max_allocs=$(sed -n 's/.*"max_allocs_per_op": *\([0-9][0-9]*\).*/\1/p' bench_budget.json)
max_bytes=$(sed -n 's/.*"max_bytes_per_op": *\([0-9][0-9]*\).*/\1/p' bench_budget.json)
test -n "$max_allocs" && test -n "$max_bytes"
test "$allocs" -le "$max_allocs"
test "$bytes" -le "$max_bytes"

# Same gate for the streaming hot path: one session push (one pair's
# inference plus the incremental K-GRI column and the provisional merge)
# must stay within its own budget — the streaming substrate's value is the
# per-point cost staying a small constant, so a regression here silently
# erodes the whole feature.
session_line=$(go test -timeout 300s -run '^$' -bench '^BenchmarkSessionStep$' \
    -benchmem -benchtime 50x . | grep '^BenchmarkSessionStep')
echo "$session_line"
allocs=$(echo "$session_line" | awk '{print $(NF-1)}')
bytes=$(echo "$session_line" | awk '{print $(NF-3)}')
max_allocs=$(sed -n 's/.*"session_max_allocs_per_op": *\([0-9][0-9]*\).*/\1/p' bench_budget.json)
max_bytes=$(sed -n 's/.*"session_max_bytes_per_op": *\([0-9][0-9]*\).*/\1/p' bench_budget.json)
test -n "$max_allocs" && test -n "$max_bytes"
test "$allocs" -le "$max_allocs"
test "$bytes" -le "$max_bytes"

# Crash-recovery smoke, end to end: feed a live NDJSON stream into a durable
# store through a fifo (so stdin stays open and the process cannot exit
# cleanly), SIGKILL the process mid-stream, then reopen the same data
# directory and assert recovery restored at least every batch the killed
# process acknowledged (-wal-sync always: an acknowledged batch is fsynced).
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/gendata" ./cmd/gendata
go build -o "$tmp/hris" ./cmd/hris
"$tmp/gendata" -out "$tmp/data" -rows 10 -cols 10 -trips 60 -hotspots 4 -stream 40 > "$tmp/stream.ndjson"
mkfifo "$tmp/pipe"
"$tmp/hris" -data "$tmp/data" -data-dir "$tmp/store" -wal-sync always -follow \
    < "$tmp/pipe" > "$tmp/follow.log" 2>&1 &
pid=$!
( cat "$tmp/stream.ndjson"; sleep 60 ) > "$tmp/pipe" &
writer=$!
i=0
until grep -q '^follow: +[1-9]' "$tmp/follow.log"; do
    i=$((i + 1)); test "$i" -le 300; sleep 0.1
done
kill -9 "$pid"
wait "$pid" || true
kill "$writer" 2>/dev/null || true
wait "$writer" || true
# Every "follow: +N trips" line with N > 0 is one fsynced epoch the killed
# process acknowledged; the reopened store must be at or past all of them.
acked=$(grep -c '^follow: +[1-9]' "$tmp/follow.log")
"$tmp/hris" -data "$tmp/data" -data-dir "$tmp/store" -wal-sync always -follow \
    < /dev/null > "$tmp/reopen.log" 2>&1
grep -q 'recovered epoch' "$tmp/reopen.log"
recovered=$(sed -n 's/.*recovered epoch \([0-9][0-9]*\).*/\1/p' "$tmp/reopen.log")
test "$recovered" -ge "$acked"
# A second clean reopen must land on the exact same epoch (recovery is
# idempotent once the torn tail is gone).
"$tmp/hris" -data "$tmp/data" -data-dir "$tmp/store" -wal-sync always -follow \
    < /dev/null > "$tmp/reopen2.log" 2>&1
grep -q "recovered epoch $recovered " "$tmp/reopen2.log"

# Sustained-traffic smoke: serve a full-size dataset (gendata defaults —
# loadgen's world flags default to the same values, so the two agree with
# no flags on either side) behind the admission gate and drive it with the
# closed-loop load generator. Under capacity (2 clients against 2 workers
# + 2 queue slots, generous deadline) nothing may be shed and no 5xx may
# escape. Over capacity the server is restarted with the tightest possible
# gate (1 worker, no queue) so that ANY overlapping pair of arrivals must
# produce a 429 — with 16 clients, a tight deadline, and -interval 20
# (dense queries whose inference outlasts a 10ms scheduler slice, so
# arrivals overlap even on one CPU — on a small dataset inference fits in
# one slice and requests serialize, never meeting at the gate) it must
# visibly shed instead of queueing without bound. A quick -fig load
# exercises the in-process closed-loop figure; the checked-in
# BENCH_10.json rows come from `cmd/experiments -quick -fig bench-json`.
go build -o "$tmp/loadgen" ./cmd/loadgen
"$tmp/gendata" -out "$tmp/data-load" > /dev/null
"$tmp/hris" -data "$tmp/data-load" -http 127.0.0.1:16060 -max-inflight 2 -queue-depth 2 \
    < /dev/null > "$tmp/serve.log" 2>&1 &
srv=$!
i=0
until grep -q 'debug server listening' "$tmp/serve.log"; do
    i=$((i + 1)); test "$i" -le 300; sleep 0.1
done
"$tmp/loadgen" -addr http://127.0.0.1:16060 \
    -c 2 -duration 3s -deadline 2s -require-no-5xx
kill "$srv"
wait "$srv" || true
"$tmp/hris" -data "$tmp/data-load" -http 127.0.0.1:16060 -max-inflight 1 -queue-depth 0 \
    < /dev/null > "$tmp/serve2.log" 2>&1 &
srv=$!
i=0
until grep -q 'debug server listening' "$tmp/serve2.log"; do
    i=$((i + 1)); test "$i" -le 300; sleep 0.1
done
"$tmp/loadgen" -addr http://127.0.0.1:16060 \
    -interval 20 -c 16 -duration 3s -deadline 100ms -require-shed
kill "$srv"
wait "$srv" || true
go run ./cmd/experiments -quick -fig load > /dev/null

# Streaming smoke, end to end: serve the same dataset with finalize-to-ingest
# on and drive /stream with concurrent NDJSON vehicle sessions. The run must
# be clean (no 5xx, no transport errors — loadgen enforces this itself via
# -require-no-5xx) and must close the loop: at least one finalized session
# ingested back into the live archive and advanced its epoch, which the
# greppable "stream summary:" record must show.
"$tmp/hris" -data "$tmp/data-load" -http 127.0.0.1:16060 -stream-ingest \
    < /dev/null > "$tmp/serve3.log" 2>&1 &
srv=$!
i=0
until grep -q 'debug server listening' "$tmp/serve3.log"; do
    i=$((i + 1)); test "$i" -le 300; sleep 0.1
done
"$tmp/loadgen" -addr http://127.0.0.1:16060 \
    -stream -c 4 -duration 3s -require-no-5xx | tee "$tmp/stream-load.log"
kill "$srv"
wait "$srv" || true
summary=$(grep '^stream summary:' "$tmp/stream-load.log")
ingested=$(echo "$summary" | sed -n 's/.* ingested=\([0-9][0-9]*\).*/\1/p')
epoch=$(echo "$summary" | sed -n 's/.* max_epoch=\([0-9][0-9]*\).*/\1/p')
test "$ingested" -ge 1
test "$epoch" -ge 1
# A quick -fig sessions exercises the in-process session profile (firm lag,
# provisional agreement, per-point step cost against window size).
go run ./cmd/experiments -quick -fig sessions > /dev/null
