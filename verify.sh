#!/bin/sh
# Repo verification: formatting, vet, build, full tests, and the race
# detector over every package. ROADMAP.md's tier-1 line is the vet/build/test
# steps; the repo-wide -race pass guards the Engine's concurrency contract
# and the lock-free obs instruments.
#
# -timeout caps each package's test binary: with cancellation checkpoints
# threaded through every search loop, a hang now means a broken checkpoint,
# and the cap turns it into a fast failure instead of a stuck CI job.
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test -timeout 120s ./...
go test -timeout 300s -race ./...

# Order independence: tests must not rely on each other's side effects or on
# package-level iteration order — shuffle execution order (also defeats the
# test cache, so everything actually reruns).
go test -timeout 120s -shuffle=on ./...

# Sharded-archive smoke: the scatter-gather equivalence, boundary-dedup and
# concurrent ingest/inference suites under the race detector, twice in one
# binary (-count=2 defeats caching and catches epoch/fingerprint state that
# leaks between runs).
go test -timeout 300s -race -count=2 -run Sharded ./internal/hist/ ./internal/core/

# Determinism: the Yen equal-weight tie-break and the K-GRI oracle suites
# must give identical verdicts run-to-run (-count=2 defeats test caching and
# runs each twice in one binary).
go test -timeout 120s -count=2 -run 'Yen|KGRI' ./internal/graphalg/ ./internal/core/

# Bench smoke: the acceleration-layer benchmarks (end-to-end HRIS query,
# ST-Matching, CH build — each in both oracle modes where applicable) must
# run one iteration without failing. Real numbers come from
# `go test -bench -benchmem` and cmd/experiments -fig bench-json.
go test -timeout 300s -run '^$' -bench 'HRISQuery|STMatch|CH|Ingest' -benchtime 1x .
