// Map-matching comparison: the paper's evaluation scenario (§IV). One
// low-sampling-rate query is matched by the incremental matcher,
// ST-Matching, IVMM and HRIS, at several sampling intervals, reproducing
// the qualitative ordering of Figure 8a on a single trip.
//
//	go run ./examples/mapmatching
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/hist"
	"repro/internal/mapmatch"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/traj"
)

func main() {
	log.SetFlags(0)
	ccfg := sim.DefaultCityConfig()
	ccfg.Rows, ccfg.Cols = 14, 14
	ccfg.Hotspots = 7
	city := sim.GenerateCity(ccfg, 11)
	fcfg := sim.DefaultFleetConfig()
	fcfg.Trips = 600
	fcfg.Seed = 11
	ds := sim.BuildDataset(city, fcfg)
	archive := hist.NewArchive(city.Graph, ds.Archive)
	eng := core.NewEngine(archive, core.DefaultParams())
	prm := mapmatch.DefaultParams()
	matchers := []mapmatch.Matcher{
		mapmatch.NewPointToCurve(city.Graph, prm),
		mapmatch.NewIncremental(city.Graph, prm),
		mapmatch.NewSTMatcher(city.Graph, prm),
		mapmatch.NewIVMM(city.Graph, prm),
		mapmatch.NewHMM(city.Graph, prm),
	}

	rng := rand.New(rand.NewSource(3))
	// Pick a popular-but-not-shortest trip: drivers here favor fast
	// arterials over the geometrically shortest path (the paper's
	// Observation 1 — "R_b is heavily traversed but longer than R_a").
	// That is exactly where history helps and shortest-path-based
	// matching misleads.
	route := popularDetourTrip(city, ds, fcfg)
	if route == nil {
		log.Fatal("no suitable trip found")
	}
	_ = rng
	high := sim.SimulateTrip(city.Graph, route, "trip", 0, sim.DefaultMotion(), rng)
	fmt.Printf("trip: %.1f km, high-rate trace has %d points\n\n",
		route.Length(city.Graph)/1000, high.Len())
	fmt.Printf("%-9s", "interval")
	for _, m := range matchers {
		fmt.Printf("%15s", m.Name())
	}
	fmt.Printf("%15s\n", "HRIS")

	for _, interval := range []float64{180, 360, 600, 900} {
		q := traj.AddNoise(traj.Downsample(high, interval), 15, rng)
		fmt.Printf("%6.0f s ", interval)
		for _, m := range matchers {
			r, err := m.Match(q)
			if err != nil {
				fmt.Printf("%15s", "fail")
				continue
			}
			fmt.Printf("%15.3f", eval.AccuracyAL(city.Graph, route, r))
		}
		res, err := eng.Infer(q)
		if err != nil {
			fmt.Printf("%15s\n", "fail")
			continue
		}
		fmt.Printf("%15.3f\n", eval.AccuracyAL(city.Graph, route, res.Routes[0].Route))
	}
	fmt.Println("\nA_L = length-weighted longest common road segments / max route length")
}

// popularDetourTrip scans hotspot pairs for a top-choice route (by travel
// time) that is noticeably longer than the distance-shortest path, and long
// enough to make an interesting query.
func popularDetourTrip(city *sim.City, ds *sim.Dataset, fcfg sim.FleetConfig) roadnet.Route {
	coverage := func(r roadnet.Route) int {
		in := make(map[roadnet.EdgeID]bool, len(r))
		for _, e := range r {
			in[e] = true
		}
		n := 0
		for _, truth := range ds.Truth {
			common := 0
			for _, e := range truth {
				if in[e] {
					common++
				}
			}
			if common*2 >= len(r) { // covers at least half the trip
				n++
			}
		}
		return n
	}
	var best roadnet.Route
	bestScore := -1.0
	for _, o := range city.Hotspots {
		for _, d := range city.Hotspots {
			if o == d {
				continue
			}
			routes := city.PlanRoutes(o, d, fcfg.RouteK)
			if len(routes) == 0 {
				continue
			}
			top := routes[0]
			if top.Length(city.Graph) < 6000 {
				continue
			}
			_, spLen, ok := city.Graph.EdgePathBetweenVertices(o, d)
			if !ok || spLen == 0 {
				continue
			}
			detour := top.Length(city.Graph) / spLen
			cov := coverage(top)
			if detour < 1.08 || cov < 8 {
				continue
			}
			if score := detour * float64(cov); score > bestScore {
				best, bestScore = top, score
			}
		}
	}
	return best
}
