// Quickstart: build a small world, run History-based Route Inference on a
// low-sampling-rate trajectory, and print the suggested routes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/hist"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic city stands in for the road network (Definition 3).
	ccfg := sim.DefaultCityConfig()
	ccfg.Rows, ccfg.Cols = 14, 14
	ccfg.Hotspots = 7
	city := sim.GenerateCity(ccfg, 42)
	fmt.Println("city:", city)

	// 2. Simulate a taxi fleet to obtain the historical archive: a mix of
	// high- and low-sampling-rate trips with skewed route choices.
	fcfg := sim.DefaultFleetConfig()
	fcfg.Trips = 500
	fcfg.Seed = 42
	ds := sim.BuildDataset(city, fcfg)
	fmt.Printf("archive: %d trips\n", len(ds.Archive))

	// 3. Index the archive and create the HRIS engine with the paper's
	// default parameters (Table II). The engine is immutable and safe to
	// share across goroutines; per-call parameters go in by value.
	archive := hist.NewArchive(city.Graph, ds.Archive)
	eng := core.NewEngine(archive, core.DefaultParams())

	// 4. Make a low-sampling-rate query: a trip sampled every 3 minutes
	// with GPS noise. The generating route is kept as ground truth.
	rng := rand.New(rand.NewSource(7))
	qc, ok := ds.GenQuery(8000, 180, 15, fcfg, rng)
	if !ok {
		log.Fatal("could not generate a query")
	}
	fmt.Printf("query: %d points over %.1f km (sampling interval %.0f s)\n",
		qc.Query.Len(), qc.Truth.Length(city.Graph)/1000, qc.Query.AvgInterval())

	// 5. Infer the top-K routes.
	res, err := eng.Infer(qc.Query)
	if err != nil {
		log.Fatalf("inference: %v", err)
	}
	fmt.Println("\nsuggested routes (best first):")
	for i, r := range res.Routes {
		fmt.Printf("  %d. score %8.2f  %.1f km  %2d segments  A_L=%.3f\n",
			i+1, r.Score, r.Route.Length(city.Graph)/1000, len(r.Route),
			eval.AccuracyAL(city.Graph, qc.Truth, r.Route))
	}

	// 6. Where did the evidence come from?
	simple, spliced := 0, 0
	for _, ps := range res.Pairs {
		simple += ps.Refs - ps.Spliced
		spliced += ps.Spliced
	}
	fmt.Printf("\nreference trajectories: %d simple (Def. 6), %d spliced (Def. 7)\n",
		simple, spliced)
}
