// Sparse geotagged-photo trajectories: the introduction's motivating case
// where samples are tens of minutes apart (a Flickr photo stream viewed as
// a trajectory). With only a handful of far-apart points, conventional
// matchers have almost nothing to work with, while HRIS leans on the
// archive's travel patterns to fill the gaps.
//
//	go run ./examples/sparsephotos
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/hist"
	"repro/internal/mapmatch"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/traj"
)

// farthestHotspots returns the hotspot pair with the largest straight-line
// separation.
func farthestHotspots(city *sim.City) (roadnet.VertexID, roadnet.VertexID) {
	var bo, bd roadnet.VertexID
	best := -1.0
	for _, o := range city.Hotspots {
		for _, d := range city.Hotspots {
			if o == d {
				continue
			}
			if dist := city.Graph.Vertices[o].Pt.Dist(city.Graph.Vertices[d].Pt); dist > best {
				bo, bd, best = o, d, dist
			}
		}
	}
	return bo, bd
}

func main() {
	log.SetFlags(0)
	ccfg := sim.DefaultCityConfig()
	ccfg.Rows, ccfg.Cols = 16, 16
	ccfg.Hotspots = 8
	city := sim.GenerateCity(ccfg, 19)
	fcfg := sim.DefaultFleetConfig()
	fcfg.Trips = 700
	fcfg.Seed = 19
	ds := sim.BuildDataset(city, fcfg)
	archive := hist.NewArchive(city.Graph, ds.Archive)

	params := core.DefaultParams()
	// Sparser observations need a wider reference search and more
	// aggressive splicing (the paper: larger sampling intervals require
	// larger φ, Figure 9a).
	params.Phi = 800
	params.SpliceEps = 300
	eng := core.NewEngine(archive, params)

	rng := rand.New(rand.NewSource(23))
	// The tourist travels one long leg between the two farthest-apart
	// hotspots, drawn from the same skewed route-choice model as the fleet.
	o, d := farthestHotspots(city)
	route, ok := sim.SampleRoute(city.PlanRoutes(o, d, fcfg.RouteK), fcfg.RouteSkew, rng)
	if !ok {
		log.Fatal("no trip")
	}
	high := sim.SimulateTrip(city.Graph, route, "tourist", 0, sim.DefaultMotion(), rng)

	// A tourist photographs every ~8 minutes: a handful of samples for the
	// whole trip.
	photos := traj.AddNoise(traj.Downsample(high, 480), 25, rng)
	fmt.Printf("photo trail: %d photos over a %.1f km trip (interval %.0f min)\n",
		photos.Len(), route.Length(city.Graph)/1000, photos.AvgInterval()/60)

	res, err := eng.Infer(photos)
	if err != nil {
		log.Fatalf("inference: %v", err)
	}
	fmt.Println("\nHRIS route suggestions:")
	for i, r := range res.Routes {
		fmt.Printf("  %d. score %8.2f  %.1f km  A_L=%.3f\n",
			i+1, r.Score, r.Route.Length(city.Graph)/1000,
			eval.AccuracyAL(city.Graph, route, r.Route))
	}

	st := mapmatch.NewSTMatcher(city.Graph, mapmatch.DefaultParams())
	if r, err := st.Match(photos); err == nil {
		fmt.Printf("\nST-Matching on the same photos: A_L=%.3f\n",
			eval.AccuracyAL(city.Graph, route, r))
	} else {
		fmt.Printf("\nST-Matching failed: %v\n", err)
	}

	fmt.Println("\nuncertainty reduction per photo gap:")
	for i := 0; i+1 < photos.Len(); i++ {
		qi, qj := photos.Points[i], photos.Points[i+1]
		locals := res.Locals[i]
		fmt.Printf("  gap %d (%.1f km apart): %d candidate routes suggested, best support %d trajectories\n",
			i+1, qi.Pt.Dist(qj.Pt)/1000, len(locals), len(locals[0].Refs))
	}
}
