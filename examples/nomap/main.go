// No-map route inference: the paper's §VI future-work scenario where the
// road network is unavailable (wildlife tracking, unmapped regions,
// privacy-stripped feeds). HRIS's transit-graph machinery runs on bare
// reference points and returns polylines; we compare the inferred path's
// deviation from the truth against straight-line interpolation, the only
// alternative without a map.
//
//	go run ./examples/nomap
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/hist"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	ccfg := sim.DefaultCityConfig()
	ccfg.Rows, ccfg.Cols = 14, 14
	ccfg.Hotspots = 7
	city := sim.GenerateCity(ccfg, 47)
	fcfg := sim.DefaultFleetConfig()
	fcfg.Trips = 600
	fcfg.Seed = 47
	ds := sim.BuildDataset(city, fcfg)

	// The inference side sees ONLY the archive points — the network exists
	// solely inside the simulator to generate ground truth.
	archive := hist.NewArchive(city.Graph, ds.Archive)
	params := core.DefaultParams()
	eng := core.NewEngine(archive, params)
	vmax := city.Graph.MaxSpeed() // a speed bound is domain knowledge, not a map

	rng := rand.New(rand.NewSource(5))
	fmt.Println("no-map inference: mean deviation from the true path (lower is better)")
	fmt.Printf("%-10s %18s %18s\n", "interval", "HRIS (no map)", "straight-line")
	for _, interval := range []float64{120, 240, 480} {
		var devH, devS float64
		n := 0
		for trial := 0; trial < 8; trial++ {
			qc, ok := ds.GenQuery(7000, interval, 15, fcfg, rng)
			if !ok {
				continue
			}
			truth := qc.Truth.Points(city.Graph)
			paths, err := eng.InferPathsNetworkFree(qc.Query, params, vmax)
			if err != nil || len(paths) == 0 {
				continue
			}
			var straight geo.Polyline
			for _, p := range qc.Query.Points {
				straight = append(straight, p.Pt)
			}
			devH += geo.Deviation(truth, paths[0].Path, 50)
			devS += geo.Deviation(truth, straight, 50)
			n++
		}
		if n == 0 {
			continue
		}
		fmt.Printf("%6.0f s   %15.0f m  %15.0f m\n", interval, devH/float64(n), devS/float64(n))
	}
	fmt.Println("\nthe inferred path snaps to corridors other vehicles actually used,")
	fmt.Println("recovering road geometry the query samples alone cannot express")
}
