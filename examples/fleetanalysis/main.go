// Fleet analysis: demonstrates the two observations that make
// history-based route inference work (§I-A) on a simulated fleet —
// Observation 1, travel patterns between locations are highly skewed, and
// Observation 2, similar low-rate trajectories complement each other —
// then quantifies uncertainty reduction across many fleet queries.
//
//	go run ./examples/fleetanalysis
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/hist"
	"repro/internal/sim"
	"repro/internal/traj"
)

func main() {
	log.SetFlags(0)
	ccfg := sim.DefaultCityConfig()
	ccfg.Rows, ccfg.Cols = 14, 14
	ccfg.Hotspots = 7
	city := sim.GenerateCity(ccfg, 31)
	fcfg := sim.DefaultFleetConfig()
	fcfg.Trips = 800
	fcfg.Seed = 31
	ds := sim.BuildDataset(city, fcfg)

	// --- Observation 1: skewness of travel patterns ---------------------
	// Group the archive's trips by origin-destination pair: within a pair,
	// a few routes should dominate ("travel patterns between certain
	// locations are often highly skewed").
	fmt.Println("Observation 1: route-choice skew within origin-destination pairs")
	type odKey struct{ o, d int }
	byOD := make(map[odKey]map[string]int)
	for _, r := range ds.Truth {
		if len(r) == 0 {
			continue
		}
		k := odKey{r.Start(city.Graph), r.End(city.Graph)}
		if byOD[k] == nil {
			byOD[k] = make(map[string]int)
		}
		byOD[k][r.Key()]++
	}
	// Report the three busiest pairs.
	type odStat struct {
		k      odKey
		trips  int
		routes int
		top    int
	}
	var stats []odStat
	for k, routes := range byOD {
		s := odStat{k: k, routes: len(routes)}
		for _, n := range routes {
			s.trips += n
			if n > s.top {
				s.top = n
			}
		}
		stats = append(stats, s)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].trips > stats[j].trips })
	for i := 0; i < len(stats) && i < 3; i++ {
		s := stats[i]
		fmt.Printf("  OD pair %d->%d: %d trips over %d distinct routes; the top route carries %.0f%%\n",
			s.k.o, s.k.d, s.trips, s.routes, 100*float64(s.top)/float64(s.trips))
	}
	fmt.Println()

	// --- Observation 2: complementarity of similar trajectories ---------
	fmt.Println("Observation 2: interleaving samples of low-rate trips on one route")
	// Pick the busiest OD pair's top route and collect the low-rate trips
	// traveling it.
	topKey := ""
	topN := 0
	for key, n := range byOD[stats[0].k] {
		if n > topN {
			topKey, topN = key, n
		}
	}
	var onTop []*traj.Trajectory
	for _, tr := range ds.Archive {
		if ds.Truth[tr.ID].Key() == topKey && tr.IsLowSamplingRate() {
			onTop = append(onTop, tr)
		}
	}
	routeLen := 0.0
	for _, r := range ds.Truth {
		if r.Key() == topKey {
			routeLen = r.Length(city.Graph)
			break
		}
	}
	if len(onTop) >= 2 {
		solo := onTop[0]
		soloSpacing := routeLen / float64(solo.Len())
		merged := 0
		for _, tr := range onTop {
			merged += tr.Len()
		}
		mergedSpacing := routeLen / float64(merged)
		fmt.Printf("  one low-rate trip alone: %d samples (~%.0f m between samples)\n",
			solo.Len(), soloSpacing)
		fmt.Printf("  %d similar trips together: %d samples (~%.0f m between samples)\n\n",
			len(onTop), merged, mergedSpacing)
	} else {
		fmt.Println("  (not enough low-rate trips on the top route in this seed)")
	}

	// --- Uncertainty reduction across the fleet -------------------------
	fmt.Println("Fleet-wide inference quality (20 queries, 3 min interval):")
	archive := hist.NewArchive(city.Graph, ds.Archive)
	eng := core.NewEngine(archive, core.DefaultParams())
	rng := rand.New(rand.NewSource(5))
	var top1, best5 float64
	n := 0
	for i := 0; i < 20; i++ {
		qc, ok := ds.GenQuery(7000, 180, 15, fcfg, rng)
		if !ok {
			continue
		}
		res, err := eng.Infer(qc.Query)
		if err != nil {
			continue
		}
		top1 += eval.AccuracyAL(city.Graph, qc.Truth, res.Routes[0].Route)
		b := 0.0
		for _, r := range res.Routes {
			if a := eval.AccuracyAL(city.Graph, qc.Truth, r.Route); a > b {
				b = a
			}
		}
		best5 += b
		n++
	}
	if n == 0 {
		log.Fatal("no successful queries")
	}
	fmt.Printf("  mean top-1 A_L: %.3f\n", top1/float64(n))
	fmt.Printf("  mean best-of-%d A_L: %.3f (uncertainty shrinks as K grows, Figure 14a)\n",
		eng.Defaults().K3, best5/float64(n))
}
